// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V). Each benchmark runs the corresponding experiment and
// reports its headline quantity through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Absolute numbers come from the
// cycle-level models; EXPERIMENTS.md discusses paper-vs-measured.
package duet_test

import (
	"flag"
	"runtime"
	"strconv"
	"testing"

	"duet/internal/accel"
	"duet/internal/apps"
	"duet/internal/area"
	"duet/internal/cluster"
	"duet/internal/faults"
	"duet/internal/sched"
	"duet/internal/sim"
	"duet/internal/workload"
)

// studyParallel is the sweep benches' study-pool width: the standard
// `go test -parallel N` flag (which the testing package registers as
// test.parallel and otherwise applies only to parallel tests), so
//
//	go test -bench 'Fig9|Fig10|Ablation' -parallel 1 .
//	go test -bench 'Fig9|Fig10|Ablation' -parallel 4 .
//
// compare the sequential baseline against a 4-wide pool on identical
// grids. It defaults to GOMAXPROCS, like duetsim -parallel.
func studyParallel() int {
	if f := flag.Lookup("test.parallel"); f != nil {
		if n, err := strconv.Atoi(f.Value.String()); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// BenchmarkTableI exercises the component area model (Table I): the
// linear MOSFET scaling of every published component.
func BenchmarkTableI(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		total = 0
		for _, c := range area.TableI {
			a, _ := area.LinearScale(c.AreaMM2, c.FreqMHz, 22, 45)
			total += a
		}
	}
	b.ReportMetric(total, "scaled-mm2")
}

// BenchmarkTableII runs the synthesis cost model over all nine
// accelerator designs (Table II).
func BenchmarkTableII(b *testing.B) {
	var fmaxSum float64
	for i := 0; i < b.N; i++ {
		fmaxSum = 0
		for _, r := range accel.TableII() {
			fmaxSum += r.FmaxMHz
		}
	}
	b.ReportMetric(fmaxSum/float64(len(accel.PaperTableII)), "mean-Fmax-MHz")
}

// Fig. 9: single-transaction round-trip latency per mechanism (100 MHz
// eFPGA — the paper's most-cited operating point).
func benchFig9(b *testing.B, m workload.Mechanism) {
	var r workload.Fig9Row
	for i := 0; i < b.N; i++ {
		r = workload.MeasureLatency(m, 100)
	}
	b.ReportMetric(r.Total.Nanoseconds(), "latency-ns")
	b.ReportMetric(r.Breakdown[sim.CatCDC].Nanoseconds(), "cdc-ns")
}

// BenchmarkFig9Sweep regenerates the full Fig. 9 grid (6 mechanisms x 3
// frequencies) through the study runner at the -parallel pool width —
// the wall-clock acceptance probe for the parallel runner.
func BenchmarkFig9Sweep(b *testing.B) {
	var rows []workload.Fig9Row
	for i := 0; i < b.N; i++ {
		rows = workload.Fig9P(studyParallel(), nil)
	}
	b.ReportMetric(float64(len(rows)), "points")
}

func BenchmarkFig9_NormalReg(b *testing.B)     { benchFig9(b, workload.NormalReg) }
func BenchmarkFig9_ShadowReg(b *testing.B)     { benchFig9(b, workload.ShadowReg) }
func BenchmarkFig9_CPUPullProxy(b *testing.B)  { benchFig9(b, workload.CPUPullProxy) }
func BenchmarkFig9_CPUPullSlow(b *testing.B)   { benchFig9(b, workload.CPUPullSlow) }
func BenchmarkFig9_FPGAPullProxy(b *testing.B) { benchFig9(b, workload.FPGAPullProxy) }
func BenchmarkFig9_FPGAPullSlow(b *testing.B)  { benchFig9(b, workload.FPGAPullSlow) }

// Fig. 10: sustained bandwidth per mechanism at 100 MHz.
func benchFig10(b *testing.B, m workload.Mechanism) {
	var r workload.Fig10Row
	for i := 0; i < b.N; i++ {
		r = workload.MeasureBandwidth(m, 100)
	}
	b.ReportMetric(r.MBps, "MB/s")
}

// BenchmarkFig10Sweep regenerates the full Fig. 10 grid (6 mechanisms x
// 5 frequencies) through the study runner at the -parallel pool width.
func BenchmarkFig10Sweep(b *testing.B) {
	var rows []workload.Fig10Row
	for i := 0; i < b.N; i++ {
		rows = workload.Fig10P(studyParallel(), nil)
	}
	b.ReportMetric(float64(len(rows)), "points")
}

func BenchmarkFig10_NormalReg(b *testing.B)     { benchFig10(b, workload.NormalReg) }
func BenchmarkFig10_ShadowReg(b *testing.B)     { benchFig10(b, workload.ShadowReg) }
func BenchmarkFig10_CPUPullProxy(b *testing.B)  { benchFig10(b, workload.CPUPullProxy) }
func BenchmarkFig10_CPUPullSlow(b *testing.B)   { benchFig10(b, workload.CPUPullSlow) }
func BenchmarkFig10_FPGAPullProxy(b *testing.B) { benchFig10(b, workload.FPGAPullProxy) }
func BenchmarkFig10_FPGAPullSlow(b *testing.B)  { benchFig10(b, workload.FPGAPullSlow) }

// Fig. 11: per-processor soft register bandwidth under contention
// (8 processors, the paper's shadow-register knee).
func benchFig11(b *testing.B, k workload.ContentionKind, procs int) {
	var r workload.Fig11Row
	for i := 0; i < b.N; i++ {
		r = workload.MeasureContention(k, procs)
	}
	b.ReportMetric(r.PerProcMBps, "MB/s-per-proc")
}

// BenchmarkFig11Sweep regenerates a Fig. 11 grid (4 series x 4 processor
// counts) through the study runner at the -parallel pool width.
func BenchmarkFig11Sweep(b *testing.B) {
	var rows []workload.Fig11Row
	for i := 0; i < b.N; i++ {
		rows = workload.Fig11P(studyParallel(), []int{1, 2, 4, 8})
	}
	b.ReportMetric(float64(len(rows)), "points")
}

func BenchmarkFig11_NormalWrite8(b *testing.B) { benchFig11(b, workload.NormalRegWrite, 8) }
func BenchmarkFig11_NormalRead8(b *testing.B)  { benchFig11(b, workload.NormalRegRead, 8) }
func BenchmarkFig11_ShadowWrite8(b *testing.B) { benchFig11(b, workload.ShadowRegWrite, 8) }
func BenchmarkFig11_ShadowRead8(b *testing.B)  { benchFig11(b, workload.ShadowRegRead, 8) }

// Fig. 12: per-benchmark Duet and FPSoC speedups (reduced workload sizes
// keep each iteration fast; the duetsim CLI runs the full sizes).
func benchFig12(b *testing.B, bench apps.Benchmark) {
	var row apps.Fig12Row
	for i := 0; i < b.N; i++ {
		row = apps.RunOne(bench)
		if row.Err != nil {
			b.Fatal(row.Err)
		}
	}
	b.ReportMetric(row.SpeedupDuet, "speedup-duet")
	b.ReportMetric(row.SpeedupFPSoC, "speedup-fpsoc")
	b.ReportMetric(row.ADPDuet, "adp-duet")
}

func BenchmarkFig12_Tangent(b *testing.B) {
	benchFig12(b, apps.Benchmark{Name: "tangent", Run: func(v apps.Variant) apps.Result {
		return apps.RunTangent(v, apps.TangentConfig{Calls: 96, Seed: 3})
	}})
}

func BenchmarkFig12_Popcount(b *testing.B) {
	benchFig12(b, apps.Benchmark{Name: "popcount", Run: func(v apps.Variant) apps.Result {
		return apps.RunPopcount(v, apps.PopcountConfig{Vectors: 48, Seed: 5})
	}})
}

func BenchmarkFig12_Sort32(b *testing.B) {
	benchFig12(b, apps.Benchmark{Name: "sort/32", Run: func(v apps.Variant) apps.Result {
		return apps.RunSort(v, apps.SortConfig{N: 32, Rounds: 4, Seed: 7})
	}})
}

func BenchmarkFig12_Sort64(b *testing.B) {
	benchFig12(b, apps.Benchmark{Name: "sort/64", Run: func(v apps.Variant) apps.Result {
		return apps.RunSort(v, apps.SortConfig{N: 64, Rounds: 3, Seed: 8})
	}})
}

func BenchmarkFig12_Sort128(b *testing.B) {
	benchFig12(b, apps.Benchmark{Name: "sort/128", Run: func(v apps.Variant) apps.Result {
		return apps.RunSort(v, apps.SortConfig{N: 128, Rounds: 2, Seed: 9})
	}})
}

func BenchmarkFig12_Dijkstra(b *testing.B) {
	benchFig12(b, apps.Benchmark{Name: "dijkstra", Run: func(v apps.Variant) apps.Result {
		return apps.RunDijkstra(v, apps.DijkstraConfig{Nodes: 128, AvgDegree: 4, Queries: 3, Seed: 17})
	}})
}

func BenchmarkFig12_BarnesHut(b *testing.B) {
	benchFig12(b, apps.Benchmark{Name: "barnes-hut", Run: func(v apps.Variant) apps.Result {
		return apps.RunBarnesHut(v, apps.BHConfig{Particles: 48, Theta: 0.5, Seed: 21})
	}})
}

func BenchmarkFig12_PDES4(b *testing.B) {
	benchFig12(b, apps.Benchmark{Name: "pdes/4", Run: func(v apps.Variant) apps.Result {
		return apps.RunPDES(v, apps.PDESConfig{Cores: 4, Population: 24, Horizon: 250, Seed: 11})
	}})
}

func BenchmarkFig12_PDES16(b *testing.B) {
	benchFig12(b, apps.Benchmark{Name: "pdes/16", Run: func(v apps.Variant) apps.Result {
		return apps.RunPDES(v, apps.PDESConfig{Cores: 16, Population: 24, Horizon: 250, Seed: 11})
	}})
}

func BenchmarkFig12_BFS4(b *testing.B) {
	benchFig12(b, apps.Benchmark{Name: "bfs/4", Run: func(v apps.Variant) apps.Result {
		return apps.RunBFS(v, apps.BFSConfig{Cores: 4, Nodes: 256, AvgDegree: 4, Seed: 13})
	}})
}

func BenchmarkFig12_BFS16(b *testing.B) {
	benchFig12(b, apps.Benchmark{Name: "bfs/16", Run: func(v apps.Variant) apps.Result {
		return apps.RunBFS(v, apps.BFSConfig{Cores: 16, Nodes: 256, AvgDegree: 4, Seed: 13})
	}})
}

// BenchmarkServeCluster measures the sharded serve farm (internal/cluster)
// against the single-System scheduler baseline on the same offered load: a
// saturating seeded stream (5us mean gap — several times one System's
// service capacity) played through 1 System and through 4 shards behind a
// least-outstanding front end. The scaling-x metric is the acceptance bar:
// 4 shards must deliver >2x the 1-shard job throughput.
func BenchmarkServeCluster(b *testing.B) {
	cfg := workload.ServeConfig{Policy: sched.Affinity, Jobs: 320, Seed: 1, MeanGapUS: 5, QueueCap: 1024}
	var base workload.ServeResult
	var sharded workload.ClusterResult
	for i := 0; i < b.N; i++ {
		base = workload.Serve(cfg)
		r, err := workload.ServeCluster(workload.ClusterConfig{
			ServeConfig: cfg, Shards: 4, FrontEnd: cluster.LeastOutstanding,
		})
		if err != nil {
			b.Fatal(err)
		}
		sharded = r
	}
	b.ReportMetric(base.ThroughputPerMS, "jobs/ms-1shard")
	b.ReportMetric(sharded.Merged.ThroughputPerMS, "jobs/ms-4shard")
	b.ReportMetric(sharded.Merged.ThroughputPerMS/base.ThroughputPerMS, "scaling-x")
}

// --- Ablation benches (design choices DESIGN.md calls out) -----------------

// BenchmarkAblationSweep runs the hub-window + CDC-depth ablation grid
// (`duetsim ablate`) through the study runner at the -parallel width.
func BenchmarkAblationSweep(b *testing.B) {
	var res workload.AblationResult
	for i := 0; i < b.N; i++ {
		res = workload.Ablation(studyParallel(), nil, nil, 100)
	}
	b.ReportMetric(float64(len(res.HubWindow)+len(res.SyncDepth)), "points")
}

// serveStream1MConfig is the shared 1M-job cluster study behind
// BenchmarkServeStream1M (cycle backend) and BenchmarkServeModel1M
// (analytic model backend): identical arrival stream, shards, front end
// and streaming digests, differing only in the execution backend —
// PERF.md's model-vs-cycle speedup comparison.
func serveStream1MConfig(be workload.BackendMode) workload.ClusterConfig {
	return workload.ClusterConfig{
		ServeConfig: workload.ServeConfig{
			Policy: sched.FIFO, Jobs: 1_000_000, Seed: 1, MeanGapUS: 30,
			QueueCap: 4096, Stats: sched.StatsStreaming, Backend: be,
		},
		Shards:   4,
		FrontEnd: cluster.RoundRobin,
	}
}

// benchServe1M runs the 1M-job cluster study at the given backend. The
// arrival stream (identical on both backends, ~100 ms to draw) is
// generated outside the timed region so the metric isolates what the
// backends actually differ in: replica construction and simulation.
func benchServe1M(b *testing.B, be workload.BackendMode) {
	cfg := serveStream1MConfig(be)
	b.ResetTimer()
	var digestBytes, p99 float64
	for i := 0; i < b.N; i++ {
		// The stream is consumed by the run (replicas write outcomes into
		// it), so each iteration draws a fresh copy off the clock; the GC
		// debt of the ~100 MB draw is flushed off the clock too, so the
		// timed region carries only the backend's own allocation behaviour.
		b.StopTimer()
		stream := workload.Arrivals(cfg.ServeConfig)
		runtime.GC()
		b.StartTimer()
		r, err := workload.ServeClusterOver(cfg, stream)
		if err != nil {
			b.Fatal(err)
		}
		if r.Merged.Completed != 1_000_000 {
			b.Fatalf("completed %d of 1M", r.Merged.Completed)
		}
		digestBytes = 0
		for _, s := range r.PerShard {
			if m := float64(s.Digest.MemoryBytes()); m > digestBytes {
				digestBytes = m
			}
		}
		p99 = float64(r.Merged.P99)
	}
	b.ReportMetric(digestBytes, "max-shard-digest-B")
	b.ReportMetric(p99, "p99-ps")
}

// BenchmarkServeStream1M is the streaming-stats acceptance run: one
// million offered jobs through a 4-shard cycle-backend cluster with
// fixed-memory digests. Per-shard stats memory (the digest table) must
// stay in the tens of kilobytes however far the job count grows; the
// exact-mode equivalent would retain 8 MB of raw samples per million
// jobs on top of the job ledgers.
func BenchmarkServeStream1M(b *testing.B) { benchServe1M(b, workload.BackendCycle) }

// BenchmarkServeModel1M is the same 1M-job cluster study on the
// calibrated analytic model backend — statistically identical output
// (see the xval gate) at a fraction of the cost, the fast path for
// capacity-planning sweeps. PERF.md records the measured speedup over
// BenchmarkServeStream1M.
func BenchmarkServeModel1M(b *testing.B) { benchServe1M(b, workload.BackendModel) }

// BenchmarkServeModel100M is the capacity-planning run: one hundred
// million offered jobs through the same 4-shard model-backend cluster,
// on the streaming pipeline (ServeCluster) with arrival generation
// inside the timed region — the streaming path fuses generation into
// the run, so there is no stream to pre-draw off the clock. Peak
// memory stays flat at any job count (PERF.md records the measured
// capacity ceiling); the snapshot entry gates the fused pipeline's
// per-job cost end to end.
func BenchmarkServeModel100M(b *testing.B) {
	const jobs = 100_000_000
	cfg := serveStream1MConfig(workload.BackendModel)
	cfg.ServeConfig.Jobs = jobs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := workload.ServeCluster(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.Merged.Completed != jobs {
			b.Fatalf("completed %d of 100M", r.Merged.Completed)
		}
	}
	b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkServeFaultFree is BenchmarkServeModel1M with an empty fault
// plan wired in: the injection seam installed on every worker (wrapper
// dispatch, scheduler fault checks) but never firing. Its snapshot
// entry gates the seam's fault-free overhead — the wrapped hot path may
// not regress more than the CI bench gate's 30% against the baseline
// recorded in BENCH_duetsim.json.
func BenchmarkServeFaultFree(b *testing.B) {
	cfg := serveStream1MConfig(workload.BackendModel)
	cfg.Faults = &faults.Plan{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		stream := workload.Arrivals(cfg.ServeConfig)
		runtime.GC()
		b.StartTimer()
		r, err := workload.ServeClusterOver(cfg, stream)
		if err != nil {
			b.Fatal(err)
		}
		if r.Merged.Completed != 1_000_000 {
			b.Fatalf("completed %d of 1M", r.Merged.Completed)
		}
		if r.Merged.Wedges != 0 || r.Merged.TimedOut != 0 || r.Merged.Unavailable != 0 {
			b.Fatalf("empty plan injected faults: %+v", r.Merged)
		}
	}
}

// BenchmarkServeRecovery is the repair-path cost run: the 1M-job
// model-backend study under a live wedge/repair cycle — fabrics wedge,
// quarantine, and return on probation throughout the run. Its snapshot
// entry gates the recovery machinery (repair scheduling, scrub,
// probationary reprogram, quarantine bookkeeping) with the same >30%
// regression check the fault-free seam gets.
func BenchmarkServeRecovery(b *testing.B) {
	cfg := serveStream1MConfig(workload.BackendModel)
	cfg.Faults = &faults.Plan{
		Seed: 1, WedgeProb: 0.002, MaxRetries: 2,
		RepairDelay: 500 * sim.US,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		stream := workload.Arrivals(cfg.ServeConfig)
		runtime.GC()
		b.StartTimer()
		r, err := workload.ServeClusterOver(cfg, stream)
		if err != nil {
			b.Fatal(err)
		}
		if r.Merged.Wedges == 0 || r.Merged.Repairs == 0 {
			b.Fatalf("recovery plan exercised nothing: %+v", r.Merged)
		}
	}
}

// BenchmarkAblation_BFSLockDiscipline compares the BFS baseline's naive
// test-and-set lock against an MCS queue lock: the Duet speedup shrinks
// when the baseline synchronizes better, isolating how much of the win
// comes from replacing contended locks with hardware queues.
func BenchmarkAblation_BFSLockDiscipline(b *testing.B) {
	var tas, mcs apps.Result
	for i := 0; i < b.N; i++ {
		tas = apps.RunBFS(apps.VariantCPU, apps.BFSConfig{Cores: 8, Nodes: 256, AvgDegree: 4, Seed: 13})
		mcs = apps.RunBFS(apps.VariantCPU, apps.BFSConfig{Cores: 8, Nodes: 256, AvgDegree: 4, Seed: 13, UseMCS: true})
		if tas.Err != nil || mcs.Err != nil {
			b.Fatal(tas.Err, mcs.Err)
		}
	}
	b.ReportMetric(tas.Runtime.Nanoseconds(), "tas-baseline-ns")
	b.ReportMetric(mcs.Runtime.Nanoseconds(), "mcs-baseline-ns")
}

// BenchmarkAblation_SoftCache runs Dijkstra with and without the soft
// cache (Duet vs FPSoC bitstreams differ exactly by the soft cache's
// fabric resources — the paper's §V-D area discussion).
func BenchmarkAblation_SoftCache(b *testing.B) {
	var duet apps.Result
	for i := 0; i < b.N; i++ {
		duet = apps.RunDijkstra(apps.VariantDuet, apps.DijkstraConfig{Nodes: 128, AvgDegree: 4, Queries: 3, Seed: 17})
		if duet.Err != nil {
			b.Fatal(duet.Err)
		}
	}
	b.ReportMetric(duet.Runtime.Nanoseconds(), "duet-ns")
	b.ReportMetric(duet.AreaMM2, "duet-mm2")
}

// BenchmarkAblation_HubWindow sweeps the Proxy Cache's in-flight request
// window (the knob behind Fig. 10's bandwidth ceiling, §V-C).
func BenchmarkAblation_HubWindow(b *testing.B) {
	var bw1, bw2, bw4 float64
	for i := 0; i < b.N; i++ {
		bw1 = workload.MeasureHubWindow(1, 100)
		bw2 = workload.MeasureHubWindow(2, 100)
		bw4 = workload.MeasureHubWindow(4, 100)
	}
	b.ReportMetric(bw1, "MB/s-1-outstanding")
	b.ReportMetric(bw2, "MB/s-2-outstanding")
	b.ReportMetric(bw4, "MB/s-4-outstanding")
}

// BenchmarkAblation_SyncDepth sweeps the CDC synchronizer depth (paper
// §IV uses Gray-coded 2-stage synchronizers): every extra stage costs a
// reader-domain cycle on every crossing.
func BenchmarkAblation_SyncDepth(b *testing.B) {
	var s2, s3, s4 sim.Time
	for i := 0; i < b.N; i++ {
		s2 = workload.MeasureSyncStagesLatency(2, 100)
		s3 = workload.MeasureSyncStagesLatency(3, 100)
		s4 = workload.MeasureSyncStagesLatency(4, 100)
	}
	b.ReportMetric(s2.Nanoseconds(), "ns-2stage")
	b.ReportMetric(s3.Nanoseconds(), "ns-3stage")
	b.ReportMetric(s4.Nanoseconds(), "ns-4stage")
}

// BenchmarkExtension_SpeculativePDES runs the paper's §III-B2 extension:
// the task scheduler with speculation (versioned copies in non-coherent
// memory, rollback on mis-speculation) against the same scheduler run
// conservatively, in the tight-lookahead regime where the conservative
// window starves.
func BenchmarkExtension_SpeculativePDES(b *testing.B) {
	var cons, spec apps.Result
	for i := 0; i < b.N; i++ {
		cfg := apps.PDESSpecConfig{Cores: 8, Population: 6, Horizon: 1200, MinDelay: 1, Seed: 31}
		cons, _ = apps.RunPDESSpec(cfg)
		cfg.Speculate = true
		spec, _ = apps.RunPDESSpec(cfg)
		if cons.Err != nil || spec.Err != nil {
			b.Fatal(cons.Err, spec.Err)
		}
	}
	b.ReportMetric(cons.Runtime.Nanoseconds(), "conservative-ns")
	b.ReportMetric(spec.Runtime.Nanoseconds(), "speculative-ns")
	b.ReportMetric(float64(cons.Runtime)/float64(spec.Runtime), "speculation-speedup")
}
