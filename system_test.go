package duet

import (
	"testing"

	"duet/internal/coherence"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/efpga"
	"duet/internal/sim"
)

// echoAccel pops values from FPGA-bound FIFO 0, transforms them, and
// pushes results into CPU-bound FIFO 1.
type echoAccel struct{ gain uint64 }

func (a *echoAccel) Start(env *efpga.Env) {
	env.Eng.Go("echo", func(t *sim.Thread) {
		for {
			v := env.Regs.PopFPGA(t, 0)
			t.SleepCycles(env.Clk, 2) // compute
			env.Regs.PushCPU(t, 1, v*a.gain)
		}
	})
}

func echoSpecs() []core.SoftRegSpec {
	return []core.SoftRegSpec{
		{Kind: core.RegFIFOToFPGA},
		{Kind: core.RegFIFOToCPU},
		{Kind: core.RegPlain},
		{Kind: core.RegNormal},
		{Kind: core.RegTokenFIFO},
	}
}

func newEchoSystem(t *testing.T, style Style) *System {
	t.Helper()
	sys := New(Config{Cores: 1, MemHubs: 1, Style: style, RegSpecs: echoSpecs(), FPGAFreqMHz: 100})
	bs := efpga.Synthesize(efpga.Design{Name: "echo", LUTLogic: 100, RegBits: 64, PipelineDepth: 3},
		func() efpga.Accelerator { return &echoAccel{gain: 3} })
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		t.Fatal(err)
	}
	sys.Adapter.StartAccelerator()
	return sys
}

func TestShadowFIFORoundTrip(t *testing.T) {
	for _, style := range []Style{StyleDuet, StyleFPSoC} {
		style := style
		t.Run(style.String(), func(t *testing.T) {
			sys := newEchoSystem(t, style)
			var got []uint64
			sys.Cores[0].Run("host", func(p cpu.Proc) {
				for i := uint64(1); i <= 8; i++ {
					p.MMIOWrite64(SoftRegAddr(0), i)
				}
				for i := 0; i < 8; i++ {
					got = append(got, p.MMIORead64(SoftRegAddr(1)))
				}
			})
			if _, err := sys.RunChecked(); err != nil {
				t.Fatal(err)
			}
			for i, v := range got {
				if v != uint64(i+1)*3 {
					t.Fatalf("%s: got %v", style, got)
				}
			}
		})
	}
}

func TestShadowVsNormalLatency(t *testing.T) {
	// Shadow register writes complete in the fast domain; FPSoC downgrades
	// them to full round-trips. Paper Fig. 9: 50-80% reduction.
	measure := func(style Style) sim.Time {
		sys := newEchoSystem(t, style)
		var lat sim.Time
		sys.Cores[0].Run("host", func(p cpu.Proc) {
			p.Exec(100)
			start := p.Now()
			p.MMIOWrite64(SoftRegAddr(2), 42) // plain register write
			lat = p.Now() - start
		})
		sys.Run()
		return lat
	}
	duet := measure(StyleDuet)
	fpsoc := measure(StyleFPSoC)
	if duet >= fpsoc {
		t.Fatalf("shadow write (%v) not faster than normal write (%v)", duet, fpsoc)
	}
	red := 1 - float64(duet)/float64(fpsoc)
	if red < 0.30 {
		t.Fatalf("latency reduction only %.0f%%", red*100)
	}
	t.Logf("plain shadow write: duet=%v fpsoc=%v (reduction %.0f%%)", duet, fpsoc, red*100)
}

func TestPlainShadowSyncsBothWays(t *testing.T) {
	sys := New(Config{Cores: 1, MemHubs: 1, Style: StyleDuet, RegSpecs: echoSpecs()})
	type watcher struct{ seen uint64 }
	w := &watcher{}
	bs := efpga.Synthesize(efpga.Design{Name: "w", LUTLogic: 10, PipelineDepth: 2}, func() efpga.Accelerator {
		return accelFunc(func(env *efpga.Env) {
			env.Eng.Go("w", func(th *sim.Thread) {
				// Wait for the CPU's plain write to sync down, then write
				// back a response through the same shadow machinery.
				for env.Regs.ReadPlain(2) != 77 {
					th.SleepCycles(env.Clk, 1)
				}
				w.seen = env.Regs.ReadPlain(2)
				env.Regs.WritePlain(th, 2, 88)
			})
		})
	})
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		t.Fatal(err)
	}
	sys.Adapter.StartAccelerator()
	var final uint64
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		p.MMIOWrite64(SoftRegAddr(2), 77)
		for final != 88 {
			final = p.MMIORead64(SoftRegAddr(2))
			p.Exec(20)
		}
	})
	sys.Run()
	if w.seen != 77 || final != 88 {
		t.Fatalf("sync: accel saw %d, cpu saw %d", w.seen, final)
	}
}

// accelFunc adapts a func to efpga.Accelerator.
type accelFunc func(*efpga.Env)

func (f accelFunc) Start(env *efpga.Env) { f(env) }

func TestTokenFIFO(t *testing.T) {
	sys := New(Config{Cores: 1, MemHubs: 0, Style: StyleDuet, RegSpecs: echoSpecs()})
	bs := efpga.Synthesize(efpga.Design{Name: "tok", LUTLogic: 10, PipelineDepth: 2}, func() efpga.Accelerator {
		return accelFunc(func(env *efpga.Env) {
			env.Eng.Go("tok", func(th *sim.Thread) {
				th.SleepCycles(env.Clk, 50)
				env.Regs.PushToken(th, 4)
				env.Regs.PushToken(th, 4)
			})
		})
	})
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		t.Fatal(err)
	}
	sys.Adapter.StartAccelerator()
	var early, later1, later2, later3 uint64
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		early = p.MMIORead64(SoftRegAddr(4)) // before any push: empty, non-blocking
		p.Exec(2000)
		later1 = p.MMIORead64(SoftRegAddr(4))
		later2 = p.MMIORead64(SoftRegAddr(4))
		later3 = p.MMIORead64(SoftRegAddr(4))
	})
	sys.Run()
	if early != 0 || later1 != 1 || later2 != 1 || later3 != 0 {
		t.Fatalf("token reads = %d,%d,%d,%d want 0,1,1,0", early, later1, later2, later3)
	}
}

func TestClaimedNormalRegisterBarrier(t *testing.T) {
	// The paper's barrier example: the processor reads a normal soft
	// register; the accelerator acknowledges the read when it reaches the
	// barrier.
	sys := New(Config{Cores: 1, MemHubs: 0, Style: StyleDuet, RegSpecs: echoSpecs()})
	const barrierReg = 3
	accelArrive := sim.Time(5 * sim.US)
	bs := efpga.Synthesize(efpga.Design{Name: "bar", LUTLogic: 10, PipelineDepth: 2}, func() efpga.Accelerator {
		return accelFunc(func(env *efpga.Env) {
			env.Regs.Claim(barrierReg)
			env.Eng.Go("bar", func(th *sim.Thread) {
				op := env.Regs.WaitOp(th, barrierReg)
				th.WaitUntil(accelArrive) // accelerator reaches the barrier late
				env.Regs.Complete(op, 1)
			})
		})
	})
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		t.Fatal(err)
	}
	sys.Adapter.StartAccelerator()
	var releaseAt sim.Time
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		p.MMIORead64(SoftRegAddr(barrierReg)) // blocks at the barrier
		releaseAt = p.Now()
	})
	sys.Run()
	if releaseAt < accelArrive {
		t.Fatalf("barrier released at %v before accelerator arrived at %v", releaseAt, accelArrive)
	}
}

func TestIOOrderingShadowBehindNormal(t *testing.T) {
	// Fig. 6c: a shadowed access issued by a source while its normal
	// write is still pending must not complete before the normal write.
	// The only way one in-order core has two MMIO ops in flight is a trap
	// handler preempting a stalled access, so that is how we test it.
	sys := New(Config{Cores: 1, MemHubs: 0, Style: StyleDuet, RegSpecs: echoSpecs()})
	const normalReg, plainReg = 3, 2
	release := sim.Time(8 * sim.US)
	bs := efpga.Synthesize(efpga.Design{Name: "slowreg", LUTLogic: 10, PipelineDepth: 2}, func() efpga.Accelerator {
		return accelFunc(func(env *efpga.Env) {
			env.Regs.Claim(normalReg)
			env.Eng.Go("slowreg", func(th *sim.Thread) {
				op := env.Regs.WaitOp(th, normalReg)
				th.WaitUntil(release) // accelerator holds the write pending
				env.Regs.Complete(op, 0)
			})
		})
	})
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		t.Fatal(err)
	}
	sys.Adapter.StartAccelerator()
	var shadowDone, normalDone sim.Time
	sys.Cores[0].SetIRQHandler(func(p cpu.Proc, irq cpu.IRQ) {
		p.MMIOWrite64(SoftRegAddr(plainReg), 2) // shadowed write behind the normal write
		shadowDone = p.Now()
	})
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		p.MMIOWrite64(SoftRegAddr(normalReg), 1) // held by the accelerator
		normalDone = p.Now()
	})
	sys.Eng.At(2*sim.US, func() { sys.Cores[0].RaiseIRQ(cpu.IRQ{Cause: "test"}) })
	sys.Run()
	if normalDone < release {
		t.Fatalf("normal write completed at %v before the accelerator released it", normalDone)
	}
	if shadowDone < release {
		t.Fatalf("shadow write completed at %v, jumping ahead of the pending normal write (released %v)", shadowDone, release)
	}
}

// memAccel drives the memory hub: it loads a value, doubles it, stores it
// back, then signals completion through a CPU-bound FIFO.
type memAccel struct{ addr uint64 }

func (a *memAccel) Start(env *efpga.Env) {
	env.Eng.Go("memaccel", func(t *sim.Thread) {
		env.Regs.PopFPGA(t, 0) // wait for the host's go signal
		port := env.Mem[0]
		b, err := port.Load(t, a.addr, 8)
		if err != nil {
			return
		}
		v := coherence.Uint64At(b)
		t.SleepCycles(env.Clk, 2)
		var buf [8]byte
		for i := range buf {
			buf[i] = byte((v * 2) >> (8 * i))
		}
		if err := port.Store(t, a.addr, buf[:]); err != nil {
			return
		}
		env.Regs.PushCPU(t, 1, 1)
	})
}

func TestMemoryHubCoherentAccess(t *testing.T) {
	for _, style := range []Style{StyleDuet, StyleFPSoC} {
		style := style
		t.Run(style.String(), func(t *testing.T) {
			sys := New(Config{Cores: 1, MemHubs: 1, Style: style, RegSpecs: echoSpecs()})
			addr := sys.Alloc(64)
			bs := efpga.Synthesize(efpga.Design{Name: "mem", LUTLogic: 50, PipelineDepth: 3},
				func() efpga.Accelerator { return &memAccel{addr: addr} })
			sys.Fabric.MustRegister(bs)
			if err := sys.Fabric.Configure(bs); err != nil {
				t.Fatal(err)
			}
			var got uint64
			sys.Cores[0].Run("host", func(p cpu.Proc) {
				p.Store64(addr, 21) // CPU writes; accelerator must pull coherently
				EnableHub(p, 0, false, false, false)
				p.MMIOWrite64(SoftRegAddr(0), 1) // go
				_ = p.MMIORead64(SoftRegAddr(1)) // wait for completion signal
				got = p.Load64(addr)             // CPU pulls the accelerator's store
			})
			sys.Adapter.StartAccelerator()
			if _, err := sys.RunChecked(); err != nil {
				t.Fatal(err)
			}
			if got != 42 {
				t.Fatalf("%v: round trip = %d, want 42", style, got)
			}
		})
	}
}

func TestHubInvalidationPushToSoftCacheSink(t *testing.T) {
	sys := New(Config{Cores: 1, MemHubs: 1, Style: StyleDuet, RegSpecs: echoSpecs()})
	addr := sys.Alloc(64)
	var invs []uint64
	bs := efpga.Synthesize(efpga.Design{Name: "sink", LUTLogic: 10, PipelineDepth: 2}, func() efpga.Accelerator {
		return accelFunc(func(env *efpga.Env) {
			env.Mem[0].SetInvSink(func(pa, vpn uint64) { invs = append(invs, pa) })
			env.Eng.Go("toucher", func(th *sim.Thread) {
				env.Regs.PopFPGA(th, 0)      // wait for the host's go signal
				env.Mem[0].Load(th, addr, 8) // the proxy now owns the line
				env.Regs.PushCPU(th, 1, 1)
			})
		})
	})
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		t.Fatal(err)
	}
	sys.Adapter.StartAccelerator()
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		EnableHub(p, 0, true, false, false) // fwdInv on
		p.MMIOWrite64(SoftRegAddr(0), 1)    // go
		_ = p.MMIORead64(SoftRegAddr(1))
		p.Store64(addr, 5) // invalidates the proxy -> push into fabric
	})
	if _, err := sys.RunChecked(); err != nil {
		t.Fatal(err)
	}
	if len(invs) != 1 || invs[0] != addr {
		t.Fatalf("invalidation pushes = %#v", invs)
	}
}

func TestTLBFaultResolvedByKernel(t *testing.T) {
	sys := New(Config{Cores: 1, MemHubs: 1, Style: StyleDuet, RegSpecs: echoSpecs()})
	pa := sys.AllocPage()
	va := uint64(0x7000_0000)
	sys.PT.Map(va, pa)
	var result uint64
	bs := efpga.Synthesize(efpga.Design{Name: "virt", LUTLogic: 10, PipelineDepth: 2}, func() efpga.Accelerator {
		return accelFunc(func(env *efpga.Env) {
			env.Eng.Go("virt", func(th *sim.Thread) {
				env.Regs.PopFPGA(th, 0) // wait for the host's go signal
				b, err := env.Mem[0].Load(th, va+0x18, 8)
				if err != nil {
					env.Regs.PushCPU(th, 1, 0)
					return
				}
				env.Regs.PushCPU(th, 1, coherence.Uint64At(b))
			})
		})
	})
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		t.Fatal(err)
	}
	sys.Adapter.StartAccelerator()
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		p.Store64(pa+0x18, 31415)
		EnableHub(p, 0, false, false, true) // virtual mode
		p.MMIOWrite64(SoftRegAddr(0), 1)    // go
		result = p.MMIORead64(SoftRegAddr(1))
	})
	if _, err := sys.RunChecked(); err != nil {
		t.Fatal(err)
	}
	if result != 31415 {
		t.Fatalf("virtual load = %d", result)
	}
	if sys.Adapter.Hub(0).TLB().Misses == 0 {
		t.Fatal("no TLB miss recorded (fault path not exercised)")
	}
}

func TestTLBFaultUnmappedKillsAccelerator(t *testing.T) {
	sys := New(Config{Cores: 1, MemHubs: 1, Style: StyleDuet, RegSpecs: echoSpecs()})
	var loadErr error
	bs := efpga.Synthesize(efpga.Design{Name: "bad", LUTLogic: 10, PipelineDepth: 2}, func() efpga.Accelerator {
		return accelFunc(func(env *efpga.Env) {
			env.Eng.Go("bad", func(th *sim.Thread) {
				env.Regs.PopFPGA(th, 0) // wait for the host's go signal
				_, loadErr = env.Mem[0].Load(th, 0xdead0000, 8)
				env.Regs.PushCPU(th, 1, 1)
			})
		})
	})
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		t.Fatal(err)
	}
	sys.Adapter.StartAccelerator()
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		EnableHub(p, 0, false, false, true)
		p.MMIOWrite64(SoftRegAddr(0), 1) // go
		_ = p.MMIORead64(SoftRegAddr(1))
	})
	sys.Run()
	if loadErr == nil {
		t.Fatal("unmapped access did not fail")
	}
	if sys.Adapter.Hub(0).Enabled() {
		t.Fatal("hub still enabled after kill")
	}
	if sys.Adapter.ErrCode() != core.ErrKilled {
		t.Fatalf("error code = %d", sys.Adapter.ErrCode())
	}
}

func TestParityExceptionContainment(t *testing.T) {
	// A corrupted eFPGA request must deactivate the hubs without breaking
	// the coherence protocol: the Proxy Cache keeps answering, so a CPU
	// can still pull a line the proxy holds in M.
	sys := New(Config{Cores: 1, MemHubs: 1, Style: StyleDuet, RegSpecs: echoSpecs()})
	addr := sys.Alloc(64)
	bs := efpga.Synthesize(efpga.Design{Name: "par", LUTLogic: 10, PipelineDepth: 2}, func() efpga.Accelerator {
		return accelFunc(func(env *efpga.Env) {
			env.Eng.Go("par", func(th *sim.Thread) {
				env.Regs.PopFPGA(th, 0) // go signal 1
				var buf [8]byte
				buf[0] = 99
				env.Mem[0].Store(th, addr, buf[:]) // proxy now holds M
				env.Regs.PushCPU(th, 1, 1)
				env.Regs.PopFPGA(th, 0)                // go signal 2 (after fault injection)
				_, err := env.Mem[0].Load(th, addr, 8) // corrupted request
				if err == nil {
					env.Regs.PushCPU(th, 1, 2)
				} else {
					env.Regs.PushCPU(th, 1, 3)
				}
			})
		})
	})
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		t.Fatal(err)
	}
	sys.Adapter.StartAccelerator()
	var pulled, errSignal uint64
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		EnableHub(p, 0, false, false, false)
		p.MMIOWrite64(SoftRegAddr(0), 1)
		_ = p.MMIORead64(SoftRegAddr(1)) // store done; proxy holds M
		sys.Adapter.Hub(0).InjectParityFaults(1)
		p.MMIOWrite64(SoftRegAddr(0), 1)
		errSignal = p.MMIORead64(SoftRegAddr(1)) // accel's error signal
		pulled = p.Load64(addr)                  // coherence must still work
	})
	if _, err := sys.RunChecked(); err != nil {
		t.Fatal(err)
	}
	if errSignal != 3 {
		t.Fatalf("accelerator did not observe the rejected request: %d", errSignal)
	}
	if sys.Adapter.ErrCode() != core.ErrParity {
		t.Fatalf("error code = %d, want parity", sys.Adapter.ErrCode())
	}
	if sys.Adapter.Hub(0).Enabled() {
		t.Fatal("hub not deactivated")
	}
	if pulled != 99 {
		t.Fatalf("CPU pull after exception = %d (coherence broken)", pulled)
	}
}

func TestTimeoutExceptionOnHungAccelerator(t *testing.T) {
	sys := New(Config{Cores: 1, MemHubs: 1, Style: StyleDuet, RegSpecs: echoSpecs()})
	// The accelerator never pushes: a blocking CPU-bound FIFO read must
	// time out, latch an error, and return bogus data instead of hanging.
	bs := efpga.Synthesize(efpga.Design{Name: "hung", LUTLogic: 10, PipelineDepth: 2},
		func() efpga.Accelerator { return accelFunc(func(env *efpga.Env) {}) })
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		t.Fatal(err)
	}
	sys.Adapter.StartAccelerator()
	done := false
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		p.MMIOWrite64(MgrRegAddr(core.RegTimeout), 5000) // 5us watchdog
		_ = p.MMIORead64(SoftRegAddr(1))                 // would hang forever
		done = true
	})
	sys.Run()
	if !done {
		t.Fatal("blocking read hung despite watchdog")
	}
	if sys.Adapter.ErrCode() != core.ErrTimeout {
		t.Fatalf("error code = %d, want timeout", sys.Adapter.ErrCode())
	}
}

func TestMMIOProgrammingFlow(t *testing.T) {
	sys := New(Config{Cores: 1, MemHubs: 1, Style: StyleDuet, RegSpecs: echoSpecs()})
	good := efpga.Synthesize(efpga.Design{Name: "echo", LUTLogic: 100, PipelineDepth: 3},
		func() efpga.Accelerator { return &echoAccel{gain: 5} })
	bad := efpga.Synthesize(efpga.Design{Name: "corrupt", LUTLogic: 100, PipelineDepth: 3},
		func() efpga.Accelerator { return &echoAccel{gain: 1} })
	bad.Corrupt()
	goodID := sys.Fabric.MustRegister(good)
	badID := sys.Fabric.MustRegister(bad)
	var progBad, progGood bool
	var echoed uint64
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		progBad = Program(p, badID) // integrity check must fail
		p.MMIOWrite64(MgrRegAddr(core.RegCtrl), 1)
		progGood = Program(p, goodID)
		p.MMIOWrite64(SoftRegAddr(0), 7)
		echoed = p.MMIORead64(SoftRegAddr(1))
	})
	sys.Run()
	if progBad {
		t.Fatal("corrupted bitstream programmed successfully")
	}
	if !progGood {
		t.Fatal("valid bitstream failed to program")
	}
	if echoed != 35 {
		t.Fatalf("echo after programming = %d", echoed)
	}
}

func TestProgrammingRequiresDisabledHubs(t *testing.T) {
	sys := newEchoSystem(t, StyleDuet)
	bs := efpga.Synthesize(efpga.Design{Name: "x", LUTLogic: 10, PipelineDepth: 2},
		func() efpga.Accelerator { return accelFunc(func(*efpga.Env) {}) })
	id := sys.Fabric.MustRegister(bs)
	var ok bool
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		EnableHub(p, 0, false, false, false)
		ok = Program(p, id)
	})
	sys.Run()
	if ok {
		t.Fatal("programming succeeded with enabled memory hubs")
	}
}

func TestWriteNoAllocateSwitch(t *testing.T) {
	sys := New(Config{Cores: 1, MemHubs: 1, Style: StyleDuet, RegSpecs: echoSpecs()})
	addr := sys.Alloc(64)
	bs := efpga.Synthesize(efpga.Design{Name: "wna", LUTLogic: 10, PipelineDepth: 2}, func() efpga.Accelerator {
		return accelFunc(func(env *efpga.Env) {
			env.Eng.Go("wna", func(th *sim.Thread) {
				env.Regs.PopFPGA(th, 0) // wait for the host's go signal
				var buf [8]byte
				buf[0] = 11
				env.Mem[0].Store(th, addr, buf[:])
				env.Regs.PushCPU(th, 1, 1)
			})
		})
	})
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		t.Fatal(err)
	}
	sys.Adapter.StartAccelerator()
	var got uint64
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		p.MMIOWrite64(HubSwitchAddr(0, core.SwWriteAlloc), 0) // write-no-allocate
		EnableHub(p, 0, false, false, false)
		p.MMIOWrite64(SoftRegAddr(0), 1) // go
		_ = p.MMIORead64(SoftRegAddr(1))
		got = p.Load64(addr)
	})
	if _, err := sys.RunChecked(); err != nil {
		t.Fatal(err)
	}
	if got != 11 {
		t.Fatalf("WNA store lost: %d", got)
	}
	if st := sys.Adapter.Hub(0).Proxy().State(addr); st != coherence.StateI {
		t.Fatalf("WNA store allocated a proxy line: state %s", coherence.StateName(st))
	}
}

func TestAtomicsSwitchGate(t *testing.T) {
	sys := New(Config{Cores: 1, MemHubs: 1, Style: StyleDuet, RegSpecs: echoSpecs()})
	addr := sys.Alloc(64)
	var errWithout, errWith error
	var old uint64
	bs := efpga.Synthesize(efpga.Design{Name: "amo", LUTLogic: 10, PipelineDepth: 2}, func() efpga.Accelerator {
		return accelFunc(func(env *efpga.Env) {
			env.Eng.Go("amo", func(th *sim.Thread) {
				_, errWithout = env.Mem[0].Amo(th, int(coherence.AmoAdd), addr, 8, 5, 0)
				env.Regs.PushCPU(th, 1, 1)
				env.Regs.PopFPGA(th, 0) // wait for the host to flip the switch
				old, errWith = env.Mem[0].Amo(th, int(coherence.AmoAdd), addr, 8, 5, 0)
				env.Regs.PushCPU(th, 1, 2)
			})
		})
	})
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		t.Fatal(err)
	}
	sys.Adapter.StartAccelerator()
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		EnableHub(p, 0, false, false, false) // atomics off
		_ = p.MMIORead64(SoftRegAddr(1))
		p.MMIOWrite64(HubSwitchAddr(0, core.SwAtomics), 1)
		p.MMIOWrite64(SoftRegAddr(0), 1)
		_ = p.MMIORead64(SoftRegAddr(1))
	})
	if _, err := sys.RunChecked(); err != nil {
		t.Fatal(err)
	}
	if errWithout == nil {
		t.Fatal("AMO succeeded with atomics disabled")
	}
	if errWith != nil || old != 0 {
		t.Fatalf("AMO with atomics enabled: old=%d err=%v", old, errWith)
	}
}

func TestMultiHubSystem(t *testing.T) {
	// P1M2: two memory hubs (sort uses one for input, one for output).
	sys := New(Config{Cores: 1, MemHubs: 2, Style: StyleDuet, RegSpecs: echoSpecs()})
	src := sys.Alloc(64)
	dst := sys.Alloc(64)
	bs := efpga.Synthesize(efpga.Design{Name: "copy", LUTLogic: 20, PipelineDepth: 2}, func() efpga.Accelerator {
		return accelFunc(func(env *efpga.Env) {
			env.Eng.Go("copy", func(th *sim.Thread) {
				env.Regs.PopFPGA(th, 0) // wait for the host's go signal
				b, err := env.Mem[0].Load(th, src, 8)
				if err != nil {
					return
				}
				if err := env.Mem[1].Store(th, dst, b); err != nil {
					return
				}
				env.Regs.PushCPU(th, 1, 1)
			})
		})
	})
	sys.Fabric.MustRegister(bs)
	if err := sys.Fabric.Configure(bs); err != nil {
		t.Fatal(err)
	}
	sys.Adapter.StartAccelerator()
	var got uint64
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		p.Store64(src, 123456)
		EnableHub(p, 0, false, false, false)
		EnableHub(p, 1, false, false, false)
		p.MMIOWrite64(SoftRegAddr(0), 1) // go
		_ = p.MMIORead64(SoftRegAddr(1))
		got = p.Load64(dst)
	})
	if _, err := sys.RunChecked(); err != nil {
		t.Fatal(err)
	}
	if got != 123456 {
		t.Fatalf("cross-hub copy = %d", got)
	}
}

func TestStyleStringBounds(t *testing.T) {
	if got := Style(99).String(); got != "unknown" {
		t.Fatalf("Style(99) = %q, want unknown", got)
	}
	if got := Style(-1).String(); got != "unknown" {
		t.Fatalf("Style(-1) = %q, want unknown", got)
	}
	if got := StyleDuet.String(); got != "duet" {
		t.Fatalf("StyleDuet = %q", got)
	}
}

// TestProgramPollBound: a programming engine that stays busy past the
// poll bound must fail the poll loop with a distinct wedged status
// instead of spinning forever.
func TestProgramPollBound(t *testing.T) {
	sys := New(Config{Cores: 1, MemHubs: 1, Style: StyleDuet})
	// A huge configuration image streams for ~1M fast cycles — far past
	// the poll bound — so the engine reports neither ready nor error
	// while the host is polling.
	slow := &efpga.Bitstream{
		Name:    "glacial",
		Image:   make([]byte, 16<<20),
		Factory: func() efpga.Accelerator { return accelFunc(func(*efpga.Env) {}) },
	}
	slow.CRC = slow.Checksum()
	id := sys.Fabric.MustRegister(slow)
	var st ProgStatus
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		st = ProgramStatus(p, id)
	})
	sys.Run()
	if st != ProgWedged {
		t.Fatalf("poll status = %v, want %v", st, ProgWedged)
	}
	// The background stream still completes after the host gives up.
	if sys.Fabric.Current() != slow {
		t.Fatal("bitstream never configured")
	}
}

// TestOnAccelStartHook: the adapter-wide start notification must fire on
// every start path — direct install and the MMIO programming flow.
func TestOnAccelStartHook(t *testing.T) {
	sys := New(Config{Cores: 1, MemHubs: 1, Style: StyleDuet})
	var started []string
	sys.Adapter.OnAccelStart = func(bs *efpga.Bitstream) { started = append(started, bs.Name) }
	bs := efpga.Synthesize(efpga.Design{Name: "hooked", LUTLogic: 20, PipelineDepth: 2},
		func() efpga.Accelerator { return accelFunc(func(*efpga.Env) {}) })
	if err := sys.InstallAccelerator(bs); err != nil {
		t.Fatal(err)
	}
	var prog bool
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		prog = Program(p, 0) // reprogram the same image over MMIO
	})
	sys.Run()
	if !prog {
		t.Fatal("programming failed")
	}
	if len(started) != 2 || started[0] != "hooked" || started[1] != "hooked" {
		t.Fatalf("OnAccelStart fired %v, want twice for %q", started, "hooked")
	}
}

// TestProgramAsyncBusyRejected: starting a second programming flow while
// one is streaming must be rejected without disturbing the first.
func TestProgramAsyncBusyRejected(t *testing.T) {
	sys := New(Config{Cores: 1, MemHubs: 1, Style: StyleDuet})
	bs := efpga.Synthesize(efpga.Design{Name: "solo", LUTLogic: 20, PipelineDepth: 2},
		func() efpga.Accelerator { return accelFunc(func(*efpga.Env) {}) })
	id := sys.Fabric.MustRegister(bs)
	var firstErr, secondErr error
	firstDone := false
	sys.Adapter.ProgramAsync(id, func(err error) { firstDone = true; firstErr = err })
	sys.Adapter.ProgramAsync(id, func(err error) { secondErr = err })
	sys.Run()
	if !firstDone || firstErr != nil {
		t.Fatalf("first flow: done=%v err=%v", firstDone, firstErr)
	}
	if secondErr == nil {
		t.Fatal("concurrent programming flow was not rejected")
	}
	if sys.Fabric.Current() != bs {
		t.Fatal("first flow did not configure the fabric")
	}
}
