// PDES: the paper's hardware augmentation example (§III-B2). An
// eFPGA-emulated task scheduler replaces the MCS-locked software event
// queue of a parallel discrete event simulation: processors stream events
// through FPGA-bound FIFOs, and the scheduler conservatively releases
// causally-safe events through per-core CPU-bound FIFOs.
//
// Run with: go run ./examples/pdes
package main

import (
	"fmt"
	"log"

	"duet/internal/apps"
)

func main() {
	fmt.Println("Parallel discrete event simulation (PHOLD), lookahead-window conservative")
	fmt.Println("scheduling; baseline uses an MCS-locked in-memory event heap.")
	fmt.Println()
	fmt.Printf("%-8s %14s %14s %10s\n", "cores", "CPU-only", "Duet", "speedup")
	for _, cores := range []int{4, 8, 16} {
		cfg := apps.PDESConfig{Cores: cores, Population: 48, Horizon: 400, Seed: 11}
		cpuRes := apps.RunPDES(apps.VariantCPU, cfg)
		duetRes := apps.RunPDES(apps.VariantDuet, cfg)
		if cpuRes.Err != nil || duetRes.Err != nil {
			log.Fatalf("pdes/%d: %v %v", cores, cpuRes.Err, duetRes.Err)
		}
		fmt.Printf("%-8d %14v %14v %9.1fx\n", cores, cpuRes.Runtime, duetRes.Runtime,
			float64(cpuRes.Runtime)/float64(duetRes.Runtime))
	}
	fmt.Println()
	fmt.Println("The baseline's lock-arbitrated queue saturates as cores are added, while the")
	fmt.Println("hardware scheduler keeps releasing safe events at fabric speed (event counts")
	fmt.Println("verified against a sequential reference each run).")
}
