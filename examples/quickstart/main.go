// Quickstart: build a Dolly-P1M1 system, program a small accelerator
// through the FPGA manager's MMIO flow, and exchange data with it through
// Shadow Registers and coherent shared memory.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"duet"
	"duet/internal/coherence"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/efpga"
	"duet/internal/sim"
)

// multiplyAccumulate is a tiny fine-grained accelerator: it pops (a, b)
// pairs from an FPGA-bound FIFO, computes a*b + c where c lives in
// coherent shared memory, and pushes results into a CPU-bound FIFO.
type multiplyAccumulate struct{ cAddr uint64 }

func (m *multiplyAccumulate) Start(env *efpga.Env) {
	env.Eng.Go("mac", func(t *sim.Thread) {
		for {
			a := env.Regs.PopFPGA(t, 0)
			b := env.Regs.PopFPGA(t, 0)
			t.SleepCycles(env.Clk, 3) // multiplier pipeline
			cBytes, err := env.Mem[0].Load(t, m.cAddr, 8)
			if err != nil {
				return
			}
			c := coherence.Uint64At(cBytes)
			env.Regs.PushCPU(t, 1, a*b+c)
		}
	})
}

func main() {
	// Dolly-P1M1: one core, one control hub + one memory hub.
	sys := duet.New(duet.Config{
		Cores:   1,
		MemHubs: 1,
		Style:   duet.StyleDuet,
		RegSpecs: []core.SoftRegSpec{
			{Kind: core.RegFIFOToFPGA}, // operand FIFO
			{Kind: core.RegFIFOToCPU},  // result FIFO
		},
	})

	cAddr := sys.Alloc(64)
	bs := efpga.Synthesize(efpga.Design{
		Name: "mac", Multipliers: 1, Adders: 1, LUTLogic: 120,
		RegBits: 256, PipelineDepth: 4,
	}, func() efpga.Accelerator { return &multiplyAccumulate{cAddr: cAddr} })
	id := sys.Fabric.MustRegister(bs)
	fmt.Printf("synthesized %q: Fmax=%.0fMHz, %d LUTs, %.3fmm2\n",
		bs.Name, bs.FmaxMHz, bs.Res.LUTs, bs.Report.AreaMM2)

	sys.Cores[0].Run("host", func(p cpu.Proc) {
		// Program the eFPGA through the FPGA manager (integrity-checked).
		if !duet.Program(p, id) {
			log.Fatal("programming failed")
		}
		duet.EnableHub(p, 0, false, false, false)

		// The accumulator constant lives in coherent shared memory: the
		// accelerator pulls it through its Proxy Cache.
		p.Store64(cAddr, 1000)

		for i := uint64(1); i <= 5; i++ {
			start := p.Now()
			p.MMIOWrite64(duet.SoftRegAddr(0), i)
			p.MMIOWrite64(duet.SoftRegAddr(0), i+10)
			got := p.MMIORead64(duet.SoftRegAddr(1))
			fmt.Printf("  %2d * %2d + 1000 = %4d   (round trip %v)\n", i, i+10, got, p.Now()-start)
		}

		// Update the constant: coherence makes the change visible to the
		// accelerator with no flushes or explicit synchronization.
		p.Store64(cAddr, 2000)
		p.MMIOWrite64(duet.SoftRegAddr(0), 6)
		p.MMIOWrite64(duet.SoftRegAddr(0), 7)
		fmt.Printf("  after store c=2000: 6*7+c = %d\n", p.MMIORead64(duet.SoftRegAddr(1)))
	})

	if t, err := sys.RunChecked(); err != nil {
		log.Fatalf("coherence check failed: %v", err)
	} else {
		fmt.Printf("done at %v (coherence invariants verified)\n", t)
	}
}
