// Barnes-Hut: the paper's flagship fine-grained acceleration example
// (§III-A2). Four cores traverse the octree and handle the dynamic
// control flow; the frequently-invoked, compute-intensive force kernels
// (ApproxForce / CalcForce) run as pipelined soft accelerators that the
// cores time-multiplex.
//
// Run with: go run ./examples/barneshut
package main

import (
	"fmt"
	"log"

	"duet/internal/apps"
)

func main() {
	cfg := apps.BHConfig{Particles: 96, Theta: 0.5, Seed: 21}
	fmt.Printf("Barnes-Hut force calculation: %d particles, theta=%.1f, Dolly-P4M1\n\n", cfg.Particles, cfg.Theta)

	var cpuTime float64
	for _, v := range []apps.Variant{apps.VariantCPU, apps.VariantDuet, apps.VariantFPSoC} {
		r := apps.RunBarnesHut(v, cfg)
		if r.Err != nil {
			log.Fatalf("%v: %v", v, r.Err)
		}
		if v == apps.VariantCPU {
			cpuTime = float64(r.Runtime)
			fmt.Printf("  %-6s  %10v   (baseline; forces verified against the reference)\n", v, r.Runtime)
			continue
		}
		fmt.Printf("  %-6s  %10v   speedup %.2fx, silicon %.1f mm2\n",
			v, r.Runtime, cpuTime/float64(r.Runtime), r.AreaMM2)
	}
	fmt.Println("\nThe processors keep handling recursion and the opening test;")
	fmt.Println("only the multiply-heavy force evaluations are offloaded (Fig. 7).")
}
