// Fault isolation: the Duet Adapter's exception containment (§II-B, §II-E).
// A buggy accelerator — one that emits a corrupted memory request and then
// hangs — must not take down the system: the exception handler latches an
// error code, deactivates the Memory Hubs, and the Soft Register Interface
// returns bogus data instead of stalling the processors; meanwhile the
// Proxy Cache keeps answering coherence traffic, so lines the accelerator
// had modified stay reachable.
//
// Run with: go run ./examples/faultisolation
package main

import (
	"fmt"
	"log"

	"duet"
	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/efpga"
	"duet/internal/sim"
)

type buggyAccel struct{ addr uint64 }

func (a *buggyAccel) Start(env *efpga.Env) {
	env.Eng.Go("buggy", func(t *sim.Thread) {
		env.Regs.PopFPGA(t, 0) // wait for go
		var buf [8]byte
		buf[0] = 0x77
		if err := env.Mem[0].Store(t, a.addr, buf[:]); err != nil {
			return
		}
		env.Regs.PushCPU(t, 1, 1)
		env.Regs.PopFPGA(t, 0) // wait for the second go
		// This request arrives corrupted (parity fault injected below),
		// after which the accelerator never responds again.
		env.Mem[0].Load(t, a.addr, 8)
		env.Regs.PopFPGA(t, 0) // hangs forever
	})
}

func main() {
	sys := duet.New(duet.Config{
		Cores: 1, MemHubs: 1, Style: duet.StyleDuet,
		RegSpecs: []core.SoftRegSpec{
			{Kind: core.RegFIFOToFPGA},
			{Kind: core.RegFIFOToCPU},
		},
	})
	addr := sys.Alloc(64)
	bs := efpga.Synthesize(efpga.Design{Name: "buggy", LUTLogic: 80, RegBits: 64, PipelineDepth: 3},
		func() efpga.Accelerator { return &buggyAccel{addr: addr} })
	if err := sys.InstallAccelerator(bs); err != nil {
		log.Fatal(err)
	}

	sys.Cores[0].Run("host", func(p cpu.Proc) {
		p.MMIOWrite64(duet.MgrRegAddr(core.RegTimeout), 20000) // 20us watchdog
		duet.EnableHub(p, 0, false, false, false)
		p.MMIOWrite64(duet.SoftRegAddr(0), 1) // go
		p.MMIORead64(duet.SoftRegAddr(1))     // accelerator's store done
		fmt.Println("accelerator wrote 0x77 through its Proxy Cache")

		sys.Adapter.Hub(0).InjectParityFaults(1)
		fmt.Println("injected a parity fault into the next eFPGA request...")
		p.MMIOWrite64(duet.SoftRegAddr(0), 1) // make it issue the bad load

		// This read would hang on the dead accelerator; the watchdog
		// completes it with bogus data instead of halting the core.
		v := p.MMIORead64(duet.SoftRegAddr(1))
		fmt.Printf("blocking FIFO read returned bogus 0x%x instead of deadlocking\n", v)

		// The coherence protocol survived: the accelerator's line is
		// still served by the (deactivated hub's) Proxy Cache.
		fmt.Printf("CPU pull of the accelerator's line: 0x%x\n", p.Load64(addr))
	})
	if _, err := sys.RunChecked(); err != nil {
		log.Fatalf("coherence broken after exception: %v", err)
	}
	name := map[uint64]string{core.ErrTimeout: "timeout", core.ErrParity: "parity"}
	fmt.Printf("error code latched: %d (%s), hub enabled: %v — system alive\n",
		sys.Adapter.ErrCode(), name[sys.Adapter.ErrCode()], sys.Adapter.Hub(0).Enabled())
}
