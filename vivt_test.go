package duet

import (
	"testing"

	"duet/internal/core"
	"duet/internal/cpu"
	"duet/internal/efpga"
	"duet/internal/mmu"
	"duet/internal/sim"
	"duet/internal/softcache"
)

// TestVIVTSoftCacheSynonymRule exercises the paper's §II-D corner case: a
// virtually-indexed, virtually-tagged soft cache with two virtual pages
// mapping to the same physical page. The Proxy Cache stores the virtual
// page number beside each physical tag; when the accelerator loads the
// same physical line through a different virtual address, the proxy first
// pushes an invalidation for the old VA so synonym aliases never coexist
// in the soft cache — and ordinary coherence invalidations reverse-map
// to the right virtual line.
func TestVIVTSoftCacheSynonymRule(t *testing.T) {
	sys := New(Config{
		Cores: 1, MemHubs: 1, Style: StyleDuet,
		RegSpecs: []core.SoftRegSpec{
			{Kind: core.RegFIFOToFPGA},
			{Kind: core.RegFIFOToCPU},
		},
	})
	pa := sys.AllocPage()
	va1 := uint64(0x4000_0000)
	va2 := uint64(0x4100_0000)
	sys.PT.Map(va1, pa)
	sys.PT.Map(va2, pa)

	var sc *softcache.Cache
	bs := efpga.Synthesize(efpga.Design{Name: "vivt", LUTLogic: 60, RAMKb: 16, PipelineDepth: 3},
		func() efpga.Accelerator {
			return accelFunc(func(env *efpga.Env) {
				sc = softcache.New(env, env.Mem[0], softcache.Config{
					SizeBytes: 1024, Ways: 2, VIVT: true,
				})
				env.Eng.Go("vivt", func(th *sim.Thread) {
					report := func(v uint64, err error) {
						if err != nil {
							env.Regs.PushCPU(th, 1, ^uint64(0))
							return
						}
						env.Regs.PushCPU(th, 1, v)
					}
					env.Regs.PopFPGA(th, 0)
					sc.Load64(th, va1+0x40)         // fill under va1
					report(sc.Load64(th, va1+0x40)) // immediate reuse: soft-cache hit
					env.Regs.PopFPGA(th, 0)
					report(sc.Load64(th, va1+0x40)) // after CPU store: must see new value
					env.Regs.PopFPGA(th, 0)
					report(sc.Load64(th, va2+0x40)) // synonym: same PA via va2
					env.Regs.PopFPGA(th, 0)
					report(sc.Load64(th, va2+0x40)) // after second CPU store
				})
			})
		})
	if err := sys.InstallAccelerator(bs); err != nil {
		t.Fatal(err)
	}

	var r1, r2, r3, r4 uint64
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		p.Store64(pa+0x40, 5)
		p.MMIOWrite64(HubSwitchAddr(0, core.SwFwdInv), 1)
		p.MMIOWrite64(HubSwitchAddr(0, core.SwVirtMode), 1)
		p.MMIOWrite64(HubSwitchAddr(0, core.SwEnable), 1)
		step := func() uint64 {
			p.MMIOWrite64(SoftRegAddr(0), 1)
			return p.MMIORead64(SoftRegAddr(1))
		}
		r1 = step() // accel caches 5 under va1
		p.Store64(pa+0x40, 6)
		r2 = step() // coherence inv must reverse-map to va1: reload -> 6
		r3 = step() // synonym access via va2: proxy invalidates va1 first
		p.Store64(pa+0x40, 7)
		r4 = step() // inv now reverse-maps to va2: reload -> 7
	})
	if _, err := sys.RunChecked(); err != nil {
		t.Fatal(err)
	}
	if r1 != 5 || r2 != 6 || r3 != 6 || r4 != 7 {
		t.Fatalf("VIVT sequence = %d,%d,%d,%d; want 5,6,6,7", r1, r2, r3, r4)
	}
	if sc.Invalidations < 3 {
		t.Fatalf("soft cache saw %d invalidations, want >=3 (2 coherence + 1 synonym)", sc.Invalidations)
	}
	if sc.Hits == 0 {
		t.Fatal("soft cache never hit (locality not exercised)")
	}
	_ = mmu.PageSize
}

// TestSystemDeterminism runs an identical multi-core, multi-mechanism
// workload twice and demands bit-identical timing — the property that
// makes every experiment in this repository reproducible.
func TestSystemDeterminism(t *testing.T) {
	run := func() (sim.Time, uint64) {
		sys := New(Config{Cores: 4, MemHubs: 1, Style: StyleDuet,
			RegSpecs: []core.SoftRegSpec{{Kind: core.RegFIFOToFPGA}, {Kind: core.RegFIFOToCPU}}})
		bs := efpga.Synthesize(efpga.Design{Name: "echo", LUTLogic: 50, PipelineDepth: 3},
			func() efpga.Accelerator {
				return accelFunc(func(env *efpga.Env) {
					env.Eng.Go("echo", func(th *sim.Thread) {
						for {
							v := env.Regs.PopFPGA(th, 0)
							env.Regs.PushCPU(th, 1, v+1)
						}
					})
				})
			})
		if err := sys.InstallAccelerator(bs); err != nil {
			t.Fatal(err)
		}
		var sum uint64
		shared := sys.Alloc(64)
		for c := 0; c < 4; c++ {
			c := c
			sys.Cores[c].Run("mix", func(p cpu.Proc) {
				if c == 0 {
					EnableHub(p, 0, false, false, false)
				}
				for i := 0; i < 24; i++ {
					p.AmoAdd64(shared, uint64(c+1))
					p.Store64(uint64(0x9000+c*64), uint64(i))
					p.Load64(uint64(0x9000 + ((c + 1) % 4 * 64)))
					if c == 0 {
						p.MMIOWrite64(SoftRegAddr(0), uint64(i))
						sum += p.MMIORead64(SoftRegAddr(1))
					}
				}
			})
		}
		end := sys.Run()
		return end, sum
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, s1, t2, s2)
	}
}

// TestAcceleratorResetViaMMIO exercises the FPGA manager's reset command
// (paper §II-E: feature switches can "reset the soft accelerator").
func TestAcceleratorResetViaMMIO(t *testing.T) {
	instances := 0
	sys := New(Config{Cores: 1, MemHubs: 0, Style: StyleDuet,
		RegSpecs: []core.SoftRegSpec{{Kind: core.RegFIFOToFPGA}, {Kind: core.RegFIFOToCPU}}})
	bs := efpga.Synthesize(efpga.Design{Name: "counted", LUTLogic: 20, PipelineDepth: 2},
		func() efpga.Accelerator {
			instances++
			return accelFunc(func(env *efpga.Env) {})
		})
	if err := sys.InstallAccelerator(bs); err != nil {
		t.Fatal(err)
	}
	sys.Cores[0].Run("host", func(p cpu.Proc) {
		p.MMIOWrite64(MgrRegAddr(core.RegCtrl), 2) // reset accelerator
	})
	sys.Run()
	if instances != 2 {
		t.Fatalf("accelerator instantiated %d times, want 2 (initial + reset)", instances)
	}
	if sys.Fabric.Generation != 2 {
		t.Fatalf("fabric generation = %d", sys.Fabric.Generation)
	}
}
