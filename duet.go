// Package duet is a simulation-based reproduction of "Duet: Creating
// Harmony between Processors and Embedded FPGAs" (Li, Ning, Wentzlaff —
// HPCA 2023). It builds cycle-level models of Dolly instances: manycore
// systems with OpenPiton-style directory coherence in which embedded FPGAs
// are integrated as equal peers through Duet Adapters (Proxy Caches,
// Memory Hubs, Control Hubs with Shadow Registers).
//
// A Dolly instance is described by a Config and built with New:
//
//	sys := duet.New(duet.Config{Cores: 1, MemHubs: 1, Style: duet.StyleDuet})
//	sys.Fabric.MustRegister(bitstream)
//	sys.Cores[0].Run("host", func(p cpu.Proc) { ... })
//	sys.Run()
//
// Three styles are supported: StyleDuet (the paper's architecture),
// StyleFPSoC (the §V-D baseline: FPGA-side cache in the slow clock domain
// and all shadow registers downgraded to normal), and StyleCPUOnly.
//
// The internal packages implement the substrates: a deterministic
// discrete-event kernel (internal/sim), async FIFOs with 2-stage
// synchronizers (internal/cdc), a 2D-mesh NoC (internal/noc), directory
// MESI coherence (internal/coherence), in-order cores (internal/cpu), the
// eFPGA fabric and synthesis cost model (internal/efpga), and the Duet
// Adapter itself (internal/core).
package duet
