#!/bin/sh
# bench.sh — run the committed benchmark set and snapshot or gate it.
#
#   scripts/bench.sh         # refresh BENCH_duetsim.json from a fresh run
#   scripts/bench.sh check   # fail if the fresh run regresses >30% ns/op
#
# The set covers the two layers PERF.md tracks: the sim-kernel hot path
# (engine scheduling, clock ticks, same-instant bursts, thread wakeups)
# and the serve studies on both execution backends — the materialized 1M
# runs plus the 100M-job streaming-pipeline capacity run. -benchtime 1x
# on the serve benches: one deterministic run is the measurement,
# iterating it would only multiply CI time.
set -eu
cd "$(dirname "$0")/.."

run_benches() {
    go test -run '^$' -bench 'BenchmarkEngineSchedule$|BenchmarkEngineClockTicks$|BenchmarkEngineSameInstantBurst$|BenchmarkThreadPingPong$' -benchtime 200000x ./internal/sim
    go test -run '^$' -bench 'BenchmarkServeModel1M$|BenchmarkServeModel100M$|BenchmarkServeStream1M$|BenchmarkServeFaultFree$|BenchmarkServeRecovery$' -benchtime 1x -timeout 30m .
}

case "${1:-snapshot}" in
snapshot)
    run_benches | go run ./cmd/benchsnap -out BENCH_duetsim.json
    ;;
check)
    run_benches | go run ./cmd/benchsnap -check BENCH_duetsim.json
    ;;
*)
    echo "usage: scripts/bench.sh [snapshot|check]" >&2
    exit 2
    ;;
esac
