#!/bin/sh
# daemon_smoke.sh — end-to-end smoke of the live ingest path.
#
# Boots `duetsim daemon` on a local port, drives it with `duetsim
# loadgen` for a few seconds, scrapes /metrics, and asserts:
#   - the loadgen completed a nonzero number of jobs with no errors;
#   - /metrics reports the same nonzero completion count in Prometheus
#     form;
#   - SIGTERM drains in-flight jobs and the daemon exits 0.
set -eu
cd "$(dirname "$0")/.."

PORT="${DUETSIM_SMOKE_PORT:-18080}"
ADDR="127.0.0.1:$PORT"
LOG="$(mktemp)"
REPORT="$(mktemp)"
METRICS="$(mktemp)"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -f "$LOG" "$REPORT" "$METRICS" ./duetsim-smoke' EXIT

go build -o duetsim-smoke ./cmd/duetsim

./duetsim-smoke daemon -listen "$ADDR" -backend model -efpgas 2 -policy affinity 2>"$LOG" &
DAEMON_PID=$!

# Wait for the listener (the daemon logs its address once bound).
for i in $(seq 1 50); do
    if ./duetsim-smoke loadgen -target "http://$ADDR" -duration 1ms -requests 1 >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "daemon exited before accepting connections:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

./duetsim-smoke -json loadgen -target "http://$ADDR" -mode closed -concurrency 8 -duration 3s >"$REPORT"
cat "$REPORT"

COMPLETED=$(sed -n 's/^ *"completed": \([0-9][0-9]*\),*$/\1/p' "$REPORT")
ERRORS=$(sed -n 's/^ *"other_errors": \([0-9][0-9]*\),*$/\1/p' "$REPORT")
[ -n "$COMPLETED" ] && [ "$COMPLETED" -gt 0 ] || {
    echo "loadgen completed no jobs" >&2
    exit 1
}
[ "${ERRORS:-0}" -eq 0 ] || {
    echo "loadgen hit $ERRORS errors" >&2
    exit 1
}

curl -fsS "http://$ADDR/metrics" >"$METRICS"
grep '^duetsim_completions_total ' "$METRICS"
SCRAPED=$(sed -n 's/^duetsim_completions_total \([0-9][0-9]*\)$/\1/p' "$METRICS")
[ -n "$SCRAPED" ] && [ "$SCRAPED" -ge "$COMPLETED" ] || {
    echo "/metrics completions ($SCRAPED) below loadgen's count ($COMPLETED)" >&2
    exit 1
}

kill -TERM "$DAEMON_PID"
if wait "$DAEMON_PID"; then
    :
else
    echo "daemon exited nonzero on SIGTERM:" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q 'drained' "$LOG" || {
    echo "daemon log missing drain confirmation:" >&2
    cat "$LOG" >&2
    exit 1
}
echo "daemon smoke: $COMPLETED jobs served, metrics consistent, clean drain on SIGTERM"
